#!/usr/bin/env bash
# bench.sh — run the headline solver benchmarks and write a machine-readable
# summary JSON. The benchmark set covers the sparse-construction acceptance
# gates (PR 5) on top of the PR 3 simplex-engine gates:
#
#   BenchmarkFig4          end-to-end figure regeneration (cold solver);
#                          postcard-lp-iters and postcard-sparse-hit% track
#                          pricing quality and the hyper-sparse FTRAN/BTRAN
#                          hit rate; postcard-pruned% and postcard-colgen-*
#                          track the sparse time-expanded model construction.
#   BenchmarkFig4WarmStart cold vs warm-started incremental solver on
#                          identical traces; postcard-warm-lp-iters is the
#                          basis-reuse win.
#   BenchmarkFig5          delay-tolerant regime (T = 8): the deepest
#                          time-expanded models, where reachability pruning
#                          and delayed column generation matter most.
#   BenchmarkFig7          delay-tolerant under limited capacity; the
#                          paper's headline Postcard-wins setting.
#   BenchmarkPostcardSolve one offline 40-file instance; ns/op is the
#                          single-solve latency gate.
#   BenchmarkPoissonAdmission
#                          allocate-on-arrival fast tier under Poisson
#                          heavy arrivals (PR 6); p99-admit-ns is the
#                          admission-latency gate (target < 1e6, i.e.
#                          p99 under one millisecond, no LP on the hot
#                          path).
#   BenchmarkFig4DC16/DC64/DC128
#                          the PR 9 scaling study: Dantzig-Wolfe path
#                          pricing vs the warm arc solver on a fixed file
#                          stream over a growing overlay (DC128 runs path
#                          only). postcard-path-lazy-rows and
#                          postcard-path-path-fallbacks gate the lazy
#                          master; the two cost/slot series must agree.
#
# With -backends the whole suite runs once per LP compute backend (PR 10:
# "serial" is the bit-identical default, "parallel" fans devex pricing and
# speculative FTRANs over a worker pool). Backend selection travels through
# the POSTCARD_LP_BACKEND / POSTCARD_LP_WORKERS environment hooks in
# bench_test.go, each JSON entry carries its backend, and the header records
# the host's parallelism (cpus, gomaxprocs) so cross-machine comparisons of
# the serial-vs-parallel delta stay honest: on a 1-CPU host the parallel
# backend's workers are oversubscribed and ns/op measures dispatch overhead,
# not speedup.
#
# Usage:  scripts/bench.sh [-o output.json] [-backends serial,parallel]
# Env:    BENCH_OUT         output path (default BENCH_<yyyymmdd>.json;
#                           the -o flag wins over the env var)
#         BENCH_COUNT       benchmark repetitions per entry (default 3)
#         BENCH_LP_WORKERS  worker-pool size for non-serial backends
#                           (default 0 = one worker per GOMAXPROCS)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_$(date -u +%Y%m%d).json}"
backends=""
usage() { echo "usage: scripts/bench.sh [-o output.json] [-backends serial,parallel]" >&2; exit 2; }
while [ "$#" -gt 0 ]; do
  case "$1" in
    -o)        [ "$#" -ge 2 ] || usage; out="$2"; shift 2 ;;
    -backends) [ "$#" -ge 2 ] || usage; backends="$2"; shift 2 ;;
    *) usage ;;
  esac
done

count="${BENCH_COUNT:-3}"
lp_workers="${BENCH_LP_WORKERS:-0}"
cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
gomaxprocs="${GOMAXPROCS:-$cpus}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run_suite() {
  go test -run '^$' \
    -bench '^(BenchmarkFig4|BenchmarkFig4WarmStart|BenchmarkFig5|BenchmarkFig7|BenchmarkPostcardSolve|BenchmarkPoissonAdmission|BenchmarkFig4DC16|BenchmarkFig4DC64|BenchmarkFig4DC128)$' \
    -benchmem -count "$count" . | tee -a "$raw"
}

if [ -z "$backends" ]; then
  run_suite
else
  IFS=',' read -ra belist <<<"$backends"
  for be in "${belist[@]}"; do
    echo "=== lp-backend: $be ===" | tee -a "$raw"
    POSTCARD_LP_BACKEND="$be" POSTCARD_LP_WORKERS="$lp_workers" run_suite
  done
fi

python3 - "$raw" "$out" "$cpus" "$gomaxprocs" "$backends" <<'PYEOF'
import json, re, sys, datetime

raw_path, out_path = sys.argv[1], sys.argv[2]
cpus, gomaxprocs = int(sys.argv[3]), int(sys.argv[4])
backends = [b for b in sys.argv[5].split(",") if b]
benches = {}
order = []
line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$')
backend_re = re.compile(r'^=== lp-backend: (\S+) ===$')
backend = None
for line in open(raw_path):
    line = line.strip()
    bm = backend_re.match(line)
    if bm:
        backend = bm.group(1)
        continue
    m = line_re.match(line)
    if not m:
        continue
    name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
    run = {"iterations": iters, "metrics": {}}
    for val, unit in re.findall(r'([0-9.e+-]+)\s+(\S+)', rest):
        v = float(val)
        if unit == "ns/op":
            run["ns_per_op"] = v
        elif unit == "B/op":
            run["bytes_per_op"] = v
        elif unit == "allocs/op":
            run["allocs_per_op"] = v
        else:
            run["metrics"][unit] = v
    key = (name, backend)
    if key not in benches:
        benches[key] = []
        order.append(key)
    benches[key].append(run)

summary = []
for name, be in order:
    runs = benches[(name, be)]
    entry = {"name": name, "runs": runs}
    if be is not None:
        entry["lp_backend"] = be
    ns = [r["ns_per_op"] for r in runs if "ns_per_op" in r]
    if ns:
        entry["best_ns_per_op"] = min(ns)
    # Metric values are identical across repetitions (they are totals of a
    # deterministic run), so take them from the last repetition.
    entry["metrics"] = runs[-1]["metrics"]
    summary.append(entry)

doc = {
    "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    # Host parallelism header: the serial-vs-parallel backend delta is only
    # interpretable next to the core count the worker pool actually had.
    "host": {"cpus": cpus, "gomaxprocs": gomaxprocs},
    "benchmarks": summary,
}
if backends:
    doc["lp_backends"] = backends
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"\nwrote {out_path}")
PYEOF
