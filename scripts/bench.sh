#!/usr/bin/env bash
# bench.sh — run the headline solver benchmarks and write a machine-readable
# summary JSON. The benchmark set covers the sparse-construction acceptance
# gates (PR 5) on top of the PR 3 simplex-engine gates:
#
#   BenchmarkFig4          end-to-end figure regeneration (cold solver);
#                          postcard-lp-iters and postcard-sparse-hit% track
#                          pricing quality and the hyper-sparse FTRAN/BTRAN
#                          hit rate; postcard-pruned% and postcard-colgen-*
#                          track the sparse time-expanded model construction.
#   BenchmarkFig4WarmStart cold vs warm-started incremental solver on
#                          identical traces; postcard-warm-lp-iters is the
#                          basis-reuse win.
#   BenchmarkFig5          delay-tolerant regime (T = 8): the deepest
#                          time-expanded models, where reachability pruning
#                          and delayed column generation matter most.
#   BenchmarkFig7          delay-tolerant under limited capacity; the
#                          paper's headline Postcard-wins setting.
#   BenchmarkPostcardSolve one offline 40-file instance; ns/op is the
#                          single-solve latency gate.
#   BenchmarkPoissonAdmission
#                          allocate-on-arrival fast tier under Poisson
#                          heavy arrivals (PR 6); p99-admit-ns is the
#                          admission-latency gate (target < 1e6, i.e.
#                          p99 under one millisecond, no LP on the hot
#                          path).
#   BenchmarkFig4DC16/DC64/DC128
#                          the PR 9 scaling study: Dantzig-Wolfe path
#                          pricing vs the warm arc solver on a fixed file
#                          stream over a growing overlay (DC128 runs path
#                          only). postcard-path-lazy-rows and
#                          postcard-path-path-fallbacks gate the lazy
#                          master; the two cost/slot series must agree.
#
# Usage:  scripts/bench.sh [-o output.json]
# Env:    BENCH_OUT    output path (default BENCH_<yyyymmdd>.json;
#                      the -o flag wins over the env var)
#         BENCH_COUNT  benchmark repetitions per entry (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_$(date -u +%Y%m%d).json}"
while getopts 'o:' opt; do
  case "$opt" in
    o) out="$OPTARG" ;;
    *) echo "usage: scripts/bench.sh [-o output.json]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
if [ "$#" -gt 0 ]; then
  echo "usage: scripts/bench.sh [-o output.json]" >&2
  exit 2
fi

count="${BENCH_COUNT:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench '^(BenchmarkFig4|BenchmarkFig4WarmStart|BenchmarkFig5|BenchmarkFig7|BenchmarkPostcardSolve|BenchmarkPoissonAdmission|BenchmarkFig4DC16|BenchmarkFig4DC64|BenchmarkFig4DC128)$' \
  -benchmem -count "$count" . | tee "$raw"

python3 - "$raw" "$out" <<'PYEOF'
import json, re, sys, datetime

raw_path, out_path = sys.argv[1], sys.argv[2]
benches = {}
line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$')
for line in open(raw_path):
    m = line_re.match(line.strip())
    if not m:
        continue
    name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
    run = {"iterations": iters, "metrics": {}}
    for val, unit in re.findall(r'([0-9.e+-]+)\s+(\S+)', rest):
        v = float(val)
        if unit == "ns/op":
            run["ns_per_op"] = v
        elif unit == "B/op":
            run["bytes_per_op"] = v
        elif unit == "allocs/op":
            run["allocs_per_op"] = v
        else:
            run["metrics"][unit] = v
    benches.setdefault(name, []).append(run)

summary = []
for name, runs in benches.items():
    entry = {"name": name, "runs": runs}
    ns = [r["ns_per_op"] for r in runs if "ns_per_op" in r]
    if ns:
        entry["best_ns_per_op"] = min(ns)
    # Metric values are identical across repetitions (they are totals of a
    # deterministic run), so take them from the last repetition.
    entry["metrics"] = runs[-1]["metrics"]
    summary.append(entry)

doc = {
    "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "benchmarks": summary,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"\nwrote {out_path}")
PYEOF
