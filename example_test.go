package postcard_test

import (
	"fmt"
	"log"

	"github.com/interdc/postcard"
)

// ExampleSolve reproduces the paper's Fig. 3 worked example: two files,
// four datacenters, and an optimal plan that stores data at an
// intermediate datacenter to ride an already-paid link.
func ExampleSolve() {
	nw, files, err := postcard.Fig3Topology(0)
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		log.Fatal(err)
	}
	res, err := postcard.Solve(ledger, files, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost per interval: %.2f\n", res.CostPerSlot)
	// Output: cost per interval: 32.67
}

// ExampleFlowSolve runs the paper's flow-based baseline on the same
// instance.
func ExampleFlowSolve() {
	nw, files, err := postcard.Fig3Topology(0)
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		log.Fatal(err)
	}
	res, err := postcard.FlowSolve(ledger, files, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost per interval: %.2f\n", res.CostPerSlot)
	// Output: cost per interval: 50.00
}

// ExampleMaxBulk moves bulk data for free over capacity whose charge is
// already sunk.
func ExampleMaxBulk() {
	nw, err := postcard.Complete(3, func(_, _ postcard.DC) float64 { return 2 }, 50)
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		log.Fatal(err)
	}
	// A past burst paid for 20 GB/slot on 0->1.
	if err := ledger.Add(0, 1, 0, 20); err != nil {
		log.Fatal(err)
	}
	files := []postcard.File{{ID: 1, Src: 0, Dst: 1, Size: 100, Deadline: 3, Release: 1}}
	res, err := postcard.MaxBulk(ledger, files, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %.0f GB for free\n", res.TotalDelivered)
	// Output: delivered 60 GB for free
}

// ExampleRun drives the online simulator for a few slots.
func ExampleRun() {
	nw, err := postcard.Complete(4, func(_, _ postcard.DC) float64 { return 3 }, 100)
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(4))
	if err != nil {
		log.Fatal(err)
	}
	gen, err := postcard.NewUniformWorkload(postcard.UniformWorkloadConfig{
		NumDCs: 4, MinFiles: 1, MaxFiles: 1,
		MinSizeGB: 10, MaxSizeGB: 10, MaxDeadline: 2, FixedDeadline: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := postcard.Run(ledger, &postcard.PostcardScheduler{}, gen, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d files, dropped %d\n", stats.ScheduledFiles, stats.DroppedFiles)
	// Output: scheduled 4 files, dropped 0
}
